"""On-disk, content-addressed result store — the third memo tier.

The in-process caches (:mod:`.cache`) die with the process, so every
CLI invocation, ``make bench``, and CI run used to re-simulate the full
grid from zero.  This module makes results *durable*: a directory of
JSON records under ``REPRO_CACHE_DIR`` (default ``.repro-cache/``),
keyed by the engine's existing sha256 job fingerprint.  The full lookup
path for a campaign cell is then

    RAM memo (:data:`~repro.exec.cache.RESULT_CACHE`)
      -> disk store (this module)
        -> compute (simulate)

so a repeated or overlapping campaign pays only for the cells it has
never seen, in any process, ever.

Keying and invalidation
-----------------------
Records live under ``<root>/v<STORE_SCHEMA>/<ENGINE_VERSION>/<section>/
<fp[:2]>/<fp>.json``.  Three things name a record:

* the **job fingerprint** — the deterministic sha256 of the job spec
  (:mod:`.fingerprint`); equal fingerprints mean equal results;
* the **store schema** (:data:`STORE_SCHEMA`) — the record layout; bump
  it when the serialised form changes;
* the **engine version** (:data:`ENGINE_VERSION`) — the simulator's
  timing semantics; bump it in the same commit that regenerates the
  golden fixtures (``tests/engine/golden_stats.json``), so records from
  an older engine become invisible rather than wrong.

A version bump simply changes the directory: stale records are never
read, and ``repro cache gc`` deletes them.

Concurrency
-----------
Writes go to a same-directory temp file followed by :func:`os.replace`,
so pooled workers and concurrent CLI runs can share one store — readers
see either the old record, the new record, or (before first write)
nothing, never a torn file.  Unreadable or truncated records count as
``corrupt``, are *quarantined* into ``<root>/quarantine/`` (for
post-mortem inspection — ``repro cache quarantine`` lists and clears
them), and fall back to recomputation; the recomputed record then
rewrites the original path.

Chaos testing: when a fault plan is active (:mod:`repro.exec.faults`,
``REPRO_FAULTS``), record writes may be deterministically truncated or
corrupted before the atomic rename — simulating torn writes the rename
discipline cannot prevent — so the corrupt→quarantine→recompute path
stays continuously exercised.

Sections
--------
``results``
    :class:`~repro.engine.result.SimResult` records (every recorded
    statistic round-trips exactly — see :func:`result_to_payload`).
``warm``
    Warm-hierarchy tag-store checkpoints, keyed by
    :func:`warm_fingerprint` — the warmed I$/D$/L2 state for a
    ``(program image, geometry, warm flags)`` cell is computed once and
    shared across all five models *and across runs*.
``scenarios``
    Figure 1 micro-scenario cycle dictionaries.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from dataclasses import fields as dataclass_fields

from ..engine.result import SimResult
from ..obs import trace as obs_trace
from ..pipeline.stats import CoreStats, MLPMeter, PhaseStats, StallBreakdown
from .faults import active_injector
from .fingerprint import fingerprint

#: Record-layout version: bump when the serialised form changes.
#: v2: results carry per-phase attribution buckets (``phases``).
STORE_SCHEMA = 2

#: Timing-semantics tag.  Bump in the same commit that regenerates
#: tests/engine/golden_stats.json.  History: "eh2" = the PR 2
#: event-horizon engine; "eh3" = the provably-complete horizon set
#: (leap == stepped on every cell; KNOWN_DIVERGENT emptied).
ENGINE_VERSION = "eh3"

#: ``REPRO_STORE`` values that disable the store (anything else is on).
_FALSEY = frozenset(("0", "false", "no", "off"))

_SECTIONS = ("results", "warm", "scenarios")


def store_enabled() -> bool:
    """Is the disk store on?  ``REPRO_STORE`` (default on)."""
    return os.environ.get("REPRO_STORE", "").strip().lower() not in _FALSEY


def cache_dir() -> str:
    """Store root: ``REPRO_CACHE_DIR``, default ``.repro-cache``."""
    return os.environ.get("REPRO_CACHE_DIR") or ".repro-cache"


# ----------------------------------------------------------------------
# SimResult <-> JSON payload
# ----------------------------------------------------------------------
#: Every scalar counter CoreStats records — derived from the dataclass
#: itself so a counter added later is serialised automatically (old
#: records then fail the round-trip shape check and recompute, rather
#: than silently dropping the new field).
_COMPOUND_STATS = ("stalls", "d_mlp", "l2_mlp")
_STAT_SCALARS = tuple(f.name for f in dataclass_fields(CoreStats)
                      if f.name not in _COMPOUND_STATS)
_STALL_FIELDS = tuple(f.name for f in dataclass_fields(StallBreakdown))
_PHASE_SCALARS = tuple(f.name for f in dataclass_fields(PhaseStats)
                       if f.name != "name")


def result_to_payload(result: SimResult) -> dict:
    """Serialise a SimResult so the round trip is *exact*.

    MLP meters keep their raw fill intervals (not the derived average),
    so ``count``/``average()`` on a store-hit result compute on the very
    same integers a fresh simulation would produce.
    """
    stats = result.stats
    payload = {name: getattr(stats, name) for name in _STAT_SCALARS}
    payload["stalls"] = {name: getattr(stats.stalls, name)
                         for name in _STALL_FIELDS}
    payload["d_mlp"] = [list(iv) for iv in stats.d_mlp._intervals]
    payload["l2_mlp"] = [list(iv) for iv in stats.l2_mlp._intervals]
    phases = result.phase_stats
    return {"model": result.model, "workload": result.workload,
            "stats": payload,
            "phases": None if phases is None else [
                {"name": p.name,
                 **{f: getattr(p, f) for f in _PHASE_SCALARS}}
                for p in phases
            ]}


def payload_to_result(payload: dict) -> SimResult:
    """Rebuild a SimResult from :func:`result_to_payload` output.

    Raises on any shape mismatch — callers treat that as a corrupt
    record and fall back to recomputation.
    """
    raw = payload["stats"]
    stats = CoreStats(**{name: int(raw[name]) for name in _STAT_SCALARS})
    stats.stalls = StallBreakdown(**{name: int(raw["stalls"][name])
                                     for name in _STALL_FIELDS})
    for meter_name in ("d_mlp", "l2_mlp"):
        meter = MLPMeter()
        meter._intervals = [(int(start), int(end))
                            for start, end in raw[meter_name]]
        setattr(stats, meter_name, meter)
    raw_phases = payload["phases"]  # required key: absence = corrupt record
    phases = None if raw_phases is None else [
        PhaseStats(name=str(entry["name"]),
                   **{f: int(entry[f]) for f in _PHASE_SCALARS})
        for entry in raw_phases
    ]
    return SimResult(model=str(payload["model"]),
                     workload=str(payload["workload"]), stats=stats,
                     phase_stats=phases)


# ----------------------------------------------------------------------
# warm-hierarchy checkpoints
# ----------------------------------------------------------------------
def program_image_digest(program) -> str:
    """Content digest of everything warm-up reads from a program.

    Warm tag stores are a pure function of the code size, the data
    image, the declared hot region, and the cache geometry; the first
    three live here (memoized on the program object — kernels are built
    once per process), the geometry joins in :func:`warm_fingerprint`.
    """
    digest = getattr(program, "_warm_image_digest", None)
    if digest is None:
        if len(program.hot_regions) > 1:
            # Multi-region (composed) programs: every region shapes the
            # warm L1D, so all of them key the checkpoint.  The single-
            # region form stays as it always was — existing named-suite
            # digests (and their stored checkpoints) remain valid.
            digest = fingerprint(program.name, len(program.instructions),
                                 program.data, program.hot_region,
                                 program.hot_regions)
        else:
            digest = fingerprint(program.name, len(program.instructions),
                                 program.data, program.hot_region)
        program._warm_image_digest = digest
    return digest


def warm_geometry_key(machine_config) -> tuple:
    """The warm-relevant subset of a machine config.

    Tag-store geometry plus the warm flags — nothing else: warm
    contents are line/set/assoc arithmetic over the program image, so
    e.g. Figure 6's latency sweep shares one checkpoint across all L2
    hit latencies.  Single source of truth for both the engine's
    snapshot reuse and the golden fingerprint fixtures (drift here must
    fail tier-1, not silently cold-start every checkpoint).
    """
    def geom(c):
        return (c.size_bytes, c.assoc, c.line_bytes)

    h = machine_config.hierarchy
    return (geom(h.l1i), geom(h.l1d), geom(h.l2),
            machine_config.warm_icache, machine_config.warm_dcache)


def warm_fingerprint(program, geometry_key) -> str:
    """Disk key of one warm checkpoint: image digest + geometry/flags."""
    return fingerprint("warm", program_image_digest(program), geometry_key)


def _sets_to_payload(sets) -> list:
    return [[list(entry) for entry in way_list] for way_list in sets]


def _payload_to_sets(payload) -> list:
    # Tag entries must come back as immutable (line, dirty) tuples —
    # Cache.load_sets shares them, never copies them entry-by-entry.
    return [[(int(line), bool(dirty)) for line, dirty in way_list]
            for way_list in payload]


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class ResultStore:
    """One on-disk store rooted at ``root``.

    All reads tolerate a missing, foreign, or damaged store: a failed
    lookup is a miss (or ``corrupt``), never an exception on the
    campaign path.  All writes are atomic (tmp file + rename) and
    best-effort — a read-only filesystem degrades to compute-only.
    """

    def __init__(self, root: str, *, schema: int = STORE_SCHEMA,
                 engine_version: str = ENGINE_VERSION) -> None:
        self.root = root
        self.schema = schema
        self.engine_version = engine_version
        self.version_dir = os.path.join(root, f"v{schema}", engine_version)
        # Session counters (this process, this instance).
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.writes = 0
        self.quarantined = 0
        self._flushed = {"hits": 0, "misses": 0, "corrupt": 0, "writes": 0}

    # -- paths ----------------------------------------------------------
    def _record_path(self, section: str, fp: str) -> str:
        return os.path.join(self.version_dir, section, fp[:2], fp + ".json")

    def quarantine_dir(self) -> str:
        return os.path.join(self.root, "quarantine")

    # -- generic JSON records ------------------------------------------
    def get_json(self, section: str, fp: str):
        """The ``payload`` of record ``fp`` in ``section``, or ``None``."""
        path = self._record_path(section, fp)
        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
            if (record["fingerprint"] != fp
                    or record["schema"] != self.schema
                    or record["engine"] != self.engine_version):
                raise ValueError("record/key mismatch")
            payload = record["payload"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Truncated write, damaged file, or wrong shape: quarantine
            # it (evidence, not mystery) so the recomputed record can
            # take its place.
            self.corrupt += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return payload

    def put_json(self, section: str, fp: str, payload) -> bool:
        """Atomically write one record; False when the store is unwritable."""
        record = {"schema": self.schema, "engine": self.engine_version,
                  "fingerprint": fp, "created": time.time(),
                  "payload": payload}
        if not self._atomic_write_json(self._record_path(section, fp), record):
            return False
        self.writes += 1
        return True

    def _atomic_write_json(self, path: str, obj) -> bool:
        """Same-directory tmp file + rename; False on any OSError.

        An active fault plan may deterministically mangle the record's
        bytes first (``store_truncate`` / ``store_corrupt``) — the torn
        write lands atomically, exactly like a crash mid-flush on a
        filesystem without rename atomicity would leave it.
        """
        data = json.dumps(obj, separators=(",", ":"))
        injector = active_injector()
        if injector is not None:
            mangled = injector.mangle_record(data, path)
            if mangled is not None:
                data = mangled
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(data)
                os.replace(tmp, path)
            except BaseException:
                self._discard(tmp)
                raise
        except OSError:
            return False
        return True

    def _corrupt_record(self, section: str, fp: str, *, was_hit: bool) -> None:
        """Count and quarantine a damaged record so a rewrite can land."""
        if was_hit:
            self.hits -= 1
        self.corrupt += 1
        self._quarantine(self._record_path(section, fp))

    def _quarantine(self, path: str) -> None:
        """Move a damaged record into ``quarantine/`` for post-mortem.

        The quarantined name flattens ``section/shard/record.json`` to
        ``section__shard__record.json`` so one flat directory holds any
        mix; a repeat offender overwrites its previous capture.  If the
        move itself fails (read-only store), fall back to deletion so a
        recomputed record can still land.
        """
        try:
            rel = os.path.relpath(path, self.version_dir)
            name = rel.replace(os.sep, "__")
            qdir = self.quarantine_dir()
            os.makedirs(qdir, exist_ok=True)
            os.replace(path, os.path.join(qdir, name))
            self.quarantined += 1
        except OSError:
            self._discard(path)

    def quarantine_entries(self) -> list[dict]:
        """Quarantined records, newest first: name, bytes, mtime."""
        entries = []
        qdir = self.quarantine_dir()
        try:
            names = os.listdir(qdir)
        except OSError:
            return []
        for name in names:
            path = os.path.join(qdir, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append({"name": name, "bytes": stat.st_size,
                            "mtime": stat.st_mtime})
        entries.sort(key=lambda e: e["mtime"], reverse=True)
        return entries

    def clear_quarantine(self) -> int:
        """Delete every quarantined record; returns the removed count."""
        removed = 0
        for entry in self.quarantine_entries():
            try:
                os.unlink(os.path.join(self.quarantine_dir(), entry["name"]))
                removed += 1
            except OSError:
                continue
        try:
            os.rmdir(self.quarantine_dir())
        except OSError:
            pass
        return removed

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- SimResults (the campaign tier) --------------------------------
    def get_result(self, fp: str) -> SimResult | None:
        payload = self.get_json("results", fp)
        if payload is None:
            return None
        try:
            return payload_to_result(payload)
        except (KeyError, TypeError, ValueError):
            self._corrupt_record("results", fp, was_hit=True)
            return None

    def get_results(self, fps) -> dict[str, SimResult]:
        """Batched load: one lookup per fingerprint, hits only."""
        loaded: dict[str, SimResult] = {}
        for fp in fps:
            result = self.get_result(fp)
            if result is not None:
                loaded[fp] = result
        return loaded

    def put_result(self, fp: str, result: SimResult) -> bool:
        with obs_trace.span("store.flush", fp=fp[:16]):
            return self.put_json("results", fp, result_to_payload(result))

    def put_results(self, pairs) -> None:
        """Batched flush (the engine calls this once per pool batch)."""
        for fp, result in pairs:
            if not self.put_result(fp, result):
                return  # unwritable store: don't retry per record

    # -- warm-hierarchy checkpoints ------------------------------------
    def get_warm(self, fp: str):
        """A warm ``(l1i, l1d, l2)`` tag-store triple, or ``None``."""
        payload = self.get_json("warm", fp)
        if payload is None:
            return None
        try:
            return tuple(_payload_to_sets(payload[level])
                         for level in ("l1i", "l1d", "l2"))
        except (KeyError, TypeError, ValueError):
            self._corrupt_record("warm", fp, was_hit=True)
            return None

    def put_warm(self, fp: str, snapshot) -> bool:
        l1i, l1d, l2 = snapshot
        return self.put_json("warm", fp, {"l1i": _sets_to_payload(l1i),
                                          "l1d": _sets_to_payload(l1d),
                                          "l2": _sets_to_payload(l2)})

    # -- lifetime counters ---------------------------------------------
    def _counters_path(self) -> str:
        return os.path.join(self.root, "counters.json")

    def _counters_lock_path(self) -> str:
        return self._counters_path() + ".lock"

    #: Lock acquisition: 50 tries x 10 ms covers any realistic flush
    #: (a flush holds the lock for one read + one write); a lock older
    #: than the stale cutoff belongs to a dead process and is broken.
    _LOCK_TRIES = 50
    _LOCK_RETRY_SECONDS = 0.01
    _LOCK_STALE_SECONDS = 5.0

    def _acquire_counters_lock(self) -> bool:
        """Create the lock file exclusively, with bounded retry.

        ``O_CREAT | O_EXCL`` is the atomic claim; a holder that died
        without unlinking (SIGKILL mid-flush) is detected by the lock's
        age and broken, so one crashed writer can never wedge every
        later flush.
        """
        path = self._counters_lock_path()
        try:
            # A store that has never written is rootless; ENOENT from the
            # claim would read as "unwritable" and skip the lock.
            os.makedirs(self.root, exist_ok=True)
        except OSError:
            return False
        deadline = (time.monotonic()
                    + self._LOCK_TRIES * self._LOCK_RETRY_SECONDS)
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                return True
            except FileExistsError:
                try:
                    if (time.time() - os.path.getmtime(path)
                            > self._LOCK_STALE_SECONDS):
                        self._discard(path)
                        continue
                except OSError:
                    continue  # holder just released: retry immediately
                if time.monotonic() >= deadline:
                    return False
                time.sleep(self._LOCK_RETRY_SECONDS)
            except OSError:
                return False  # unwritable root: caller falls back

    def flush_counters(self) -> None:
        """Fold this session's counter deltas into ``counters.json``.

        Read-merge-rename under an exclusive lock file, so concurrent
        flushes (pooled workers, fabric workers, parallel CLI runs over
        one store) serialise instead of overwriting each other's
        increments.  If the lock cannot be had within the bounded retry
        (contention storm, unwritable root, stale-break failure), fall
        back to the old best-effort unlocked merge — the lifetime
        numbers feed ``repro cache stats`` diagnostics, and a possibly
        dropped increment beats a lost flush or a wedged campaign.
        """
        deltas = {name: getattr(self, name) - self._flushed[name]
                  for name in self._flushed}
        if not any(deltas.values()):
            return
        if obs_trace.TRACER is not None:
            # Mirror the session deltas into the metrics registry — the
            # merge-safe face of counters.json — before they are folded
            # away into the lifetime totals.
            from ..obs import metrics as obs_metrics

            obs_metrics.REGISTRY.count_into("store", deltas)
        with obs_trace.span("store.flush", kind="counters"):
            locked = self._acquire_counters_lock()
            try:
                totals = self.read_counters()
                for name, delta in deltas.items():
                    totals[name] = totals.get(name, 0) + delta
                if not self._atomic_write_json(self._counters_path(), totals):
                    return
                for name in self._flushed:
                    self._flushed[name] = getattr(self, name)
            finally:
                if locked:
                    self._discard(self._counters_lock_path())

    def read_counters(self) -> dict:
        try:
            with open(self._counters_path(), encoding="utf-8") as handle:
                totals = json.load(handle)
            return {str(k): int(v) for k, v in totals.items()}
        except (OSError, ValueError, TypeError):
            return {}

    # -- maintenance (the `repro cache` subcommand) --------------------
    def _iter_record_paths(self, version_dir: str):
        for section in _SECTIONS:
            section_dir = os.path.join(version_dir, section)
            if not os.path.isdir(section_dir):
                continue
            for shard in sorted(os.listdir(section_dir)):
                shard_dir = os.path.join(section_dir, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in sorted(os.listdir(shard_dir)):
                    if name.endswith(".json"):
                        yield section, os.path.join(shard_dir, name)

    def _version_dirs(self):
        """All ``(vN, engine)`` directories present under the root."""
        try:
            versions = sorted(os.listdir(self.root))
        except OSError:
            return
        for vname in versions:
            vdir = os.path.join(self.root, vname)
            if not (vname.startswith("v") and os.path.isdir(vdir)):
                continue
            try:
                engines = sorted(os.listdir(vdir))
            except OSError:
                continue
            for ename in engines:
                edir = os.path.join(vdir, ename)
                if os.path.isdir(edir):
                    yield vname, ename, edir

    def stats(self) -> dict:
        """Entries and bytes per section, plus stale/quarantine totals."""
        sections = {name: {"entries": 0, "bytes": 0} for name in _SECTIONS}
        stale = {"entries": 0, "bytes": 0}
        for vname, ename, edir in self._version_dirs():
            current = (vname == f"v{self.schema}"
                       and ename == self.engine_version)
            for section, path in self._iter_record_paths(edir):
                try:
                    size = os.path.getsize(path)
                except OSError:
                    continue
                bucket = sections[section] if current else stale
                bucket["entries"] += 1
                bucket["bytes"] += size
        quarantined = self.quarantine_entries()
        quarantine = {"entries": len(quarantined),
                      "bytes": sum(e["bytes"] for e in quarantined)}
        return {
            "quarantine": quarantine,
            "root": os.path.abspath(self.root),
            "schema": self.schema,
            "engine": self.engine_version,
            "sections": sections,
            "entries": sum(s["entries"] for s in sections.values()),
            "bytes": sum(s["bytes"] for s in sections.values()),
            "stale": stale,
            "lifetime": self.read_counters(),
        }

    def verify(self) -> dict:
        """Offline integrity scan of every current-version record.

        Reads each record through the same decode path campaigns use,
        so anything a campaign would reject — torn JSON, wrong
        fingerprint, shape drift — is quarantined *now* instead of at
        its next (possibly mid-fabric) lookup.  The fabric's rendezvous
        store gets its health check without running a single job.

        The session hit/miss counters are restored afterwards: an audit
        is not campaign traffic, and must not inflate the lifetime
        numbers ``repro cache stats`` reports.  The ``corrupt`` /
        ``quarantined`` counters keep their deltas — those events are
        real.
        """
        readers = {"results": self.get_result,
                   "warm": self.get_warm,
                   "scenarios": lambda fp: self.get_json("scenarios", fp)}
        hits_before, misses_before = self.hits, self.misses
        sections = {name: {"ok": 0, "quarantined": 0} for name in _SECTIONS}
        try:
            for section, path in list(self._iter_record_paths(
                    self.version_dir)):
                fp = os.path.basename(path)[:-5]
                corrupt_before = self.corrupt
                value = readers[section](fp)
                if value is not None:
                    sections[section]["ok"] += 1
                elif self.corrupt > corrupt_before:
                    sections[section]["quarantined"] += 1
                # else: the record vanished mid-scan (concurrent gc/
                # clear) — nothing to verify, nothing to count.
        finally:
            self.hits, self.misses = hits_before, misses_before
        return {"root": os.path.abspath(self.root),
                "schema": self.schema,
                "engine": self.engine_version,
                "sections": sections,
                "ok": sum(s["ok"] for s in sections.values()),
                "quarantined": sum(s["quarantined"]
                                   for s in sections.values())}

    def clear(self) -> int:
        """Delete every record (all schemas/engines); removed file count.

        Only store-owned entries (``v*`` version trees, the quarantine
        directory, and the counters sidecar) are touched, so a
        mis-pointed ``REPRO_CACHE_DIR`` can not take unrelated files
        with it.
        """
        removed = self.clear_quarantine()
        for _vname, _ename, edir in list(self._version_dirs()):
            removed += sum(1 for _ in self._iter_record_paths(edir))
        for vname in list(os.listdir(self.root)) if os.path.isdir(self.root) else []:
            if vname.startswith("v") and os.path.isdir(os.path.join(self.root, vname)):
                shutil.rmtree(os.path.join(self.root, vname),
                              ignore_errors=True)
        self._discard(self._counters_path())
        try:
            os.rmdir(self.root)
        except OSError:
            pass
        return removed

    def gc(self, older_than_days: float) -> dict:
        """Remove stale-version trees and current records past their age.

        ``older_than_days`` applies (by mtime) to records of the current
        schema/engine; records written by any *other* schema or engine
        version are unreachable garbage and go unconditionally.
        """
        cutoff = time.time() - older_than_days * 86400.0
        removed = {"stale": 0, "expired": 0}
        for vname, ename, edir in list(self._version_dirs()):
            if vname == f"v{self.schema}" and ename == self.engine_version:
                for _section, path in list(self._iter_record_paths(edir)):
                    try:
                        if os.path.getmtime(path) < cutoff:
                            os.unlink(path)
                            removed["expired"] += 1
                    except OSError:
                        continue
                continue
            removed["stale"] += sum(1 for _ in self._iter_record_paths(edir))
            shutil.rmtree(edir, ignore_errors=True)
        # Prune directories the removals emptied — but only inside the
        # store-owned v* trees: a mis-pointed REPRO_CACHE_DIR must not
        # lose unrelated (empty) directories to gc.
        for vname in sorted(os.listdir(self.root)) if os.path.isdir(self.root) else []:
            vdir = os.path.join(self.root, vname)
            if not (vname.startswith("v") and os.path.isdir(vdir)):
                continue
            for parent, dirnames, filenames in os.walk(vdir, topdown=False):
                if not dirnames and not filenames:
                    try:
                        os.rmdir(parent)
                    except OSError:
                        pass
        return removed


# ----------------------------------------------------------------------
# the process-wide store (resolved from the environment)
# ----------------------------------------------------------------------
_ACTIVE: dict[str, ResultStore] = {}


def default_store() -> ResultStore | None:
    """The environment's store, or ``None`` when disabled.

    One instance per resolved root, so session counters survive across
    campaigns while tests that repoint ``REPRO_CACHE_DIR`` get a fresh,
    hermetic instance.
    """
    if not store_enabled():
        return None
    root = os.path.abspath(cache_dir())
    store = _ACTIVE.get(root)
    if store is None:
        store = _ACTIVE[root] = ResultStore(root)
    return store


def resolve_store(store) -> ResultStore | None:
    """Normalise a ``store=`` argument used across the harness layers.

    ``None``/``True`` -> the environment's store (:func:`default_store`),
    ``False`` -> no store, a :class:`ResultStore` -> itself.
    """
    if store is False:
        return None
    if store is None or store is True:
        return default_store()
    return store
