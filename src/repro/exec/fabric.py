"""Lease-based multi-worker campaign fabric with crash-safe recovery.

``run_jobs`` fans a campaign over one process pool; this module promotes
it to a *fabric*: independent worker processes that coordinate through a
durable, file-based job ledger, with the content-addressed result store
as the rendezvous.  Nothing in the protocol assumes the workers share a
parent process — only a filesystem and a store — so the same semantics
carry to multiple hosts over a shared directory; this module proves
them on one host first.

The ledger
----------
A campaign's ledger lives under ``<store root>/fabric/<campaign-fp>/``
where ``campaign-fp`` is a sha256 over the sorted member-job
fingerprints plus the store schema and engine version (the same job set
always rendezvouses at the same ledger, so a killed coordinator's fresh
process resumes the *same* campaign):

* ``manifest.json`` — human-readable metadata (fingerprint list, total);
* ``manifest.pkl``  — the pickled :class:`~repro.exec.job.SimJob` list,
  written create-if-absent so concurrent coordinators agree;
* ``leases/<fp>.json`` — one lease record per in-flight job:
  ``{worker, pid, acquired, expires, generation}``;
* ``done/<fp>.json`` — completion markers (the *result* lives in the
  store, keyed by the job fingerprint as always);
* ``failed/<fp>.json`` — permanent failures (after retries);
* ``workers/<id>.json`` — per-worker lease/churn counters, flushed by
  the worker so a coordinator can fold them into the
  :class:`~repro.exec.report.CampaignReport` even after the worker
  exits.

Every write follows the store's discipline: same-directory temp file +
atomic rename.  Lease *acquisition* of an unheld job additionally uses
``os.link`` (create-if-absent), so two workers racing for a fresh job
cannot both win.

Leases, not locks
-----------------
A lease has a TTL (``REPRO_LEASE_TTL``) and is renewed by a heartbeat
thread (``REPRO_HEARTBEAT``) while the worker simulates.  A worker that
is SIGKILL'd mid-job stops renewing; once the lease expires any other
worker *steals* it (bumping the generation) and the job is re-run — a
crashed worker costs one TTL of latency, never a lost job.  The race
this admits — a stalled-but-alive worker finishing a job whose lease
was stolen — is benign by construction: completion writes the result
through the content-addressed store, where a double-complete produces a
payload-identical record (an idempotent no-op), and ``done/`` markers
are last-writer-wins on identical content.  Correctness never depends
on mutual exclusion, only on fingerprints; leases exist purely to keep
duplicate work rare.

The coordinator
---------------
:func:`run_jobs_fabric` resolves the RAM-memo and disk-store tiers
exactly like ``run_jobs``, ledgers the rest, forks N local workers,
supervises them (death detection, bounded respawn, graceful
SIGTERM/SIGINT drain), and — when the fabric cannot start or every
worker is lost — degrades to the PR 6 in-process path, which always
terminates.  It is surfaced as ``repro campaign submit|status|join``,
``repro worker``, and ``--fabric N`` (``REPRO_FABRIC_WORKERS``) on
every figure/sweep/CLI campaign.

Chaos: :mod:`repro.exec.faults` grows fabric fault kinds (torn lease
writes, heartbeat stalls, clock-skewed TTLs, worker kills mid-lease);
the contract stays the one every chaos test pins — results
byte-identical to a fault-free sequential run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import shutil
import signal
import tempfile
import time

from ..obs import trace as obs_trace
from .cache import RESULT_CACHE
from .faults import active_injector
from .fingerprint import fingerprint
from .report import CampaignReport, JobFailure

#: Ledger poll interval (coordinator supervision + idle worker rescan).
POLL_INTERVAL = 0.05

#: One retry across a mid-write manifest before status says
#: "initialising" (the manifest create is two atomic writes; a reader
#: can land between them).
META_RETRY = 0.05

#: Worker deaths the coordinator replaces before abandoning the local
#: worker fleet and draining the remainder in-process.
RESPAWN_FACTOR = 2

#: Per-worker lease counter names (ledger ``workers/<id>.json`` records;
#: the coordinator folds them into the CampaignReport).
LEASE_COUNTERS = ("leases_issued", "leases_expired", "leases_stolen",
                  "leases_reclaimed")


class FabricJobError(RuntimeError):
    """A job failed permanently inside a fabric worker."""

    def __init__(self, label: str, fp: str, kind: str, error: str) -> None:
        super().__init__(f"fabric job {label} (fingerprint {fp[:16]}) "
                         f"failed [{kind}]: {error}")
        self.label = label
        self.fingerprint = fp
        self.kind = kind


def lease_ttl() -> float:
    """Lease time-to-live in seconds (``REPRO_LEASE_TTL``, default 30)."""
    env = os.environ.get("REPRO_LEASE_TTL")
    if env:
        try:
            ttl = float(env)
        except ValueError:
            raise ValueError(
                f"REPRO_LEASE_TTL must be a number, got {env!r}") from None
        if ttl > 0:
            return ttl
    return 30.0


def heartbeat_interval(ttl: float | None = None) -> float:
    """Lease renewal period (``REPRO_HEARTBEAT``, default TTL/3)."""
    ttl = ttl if ttl is not None else lease_ttl()
    env = os.environ.get("REPRO_HEARTBEAT")
    if env:
        try:
            beat = float(env)
        except ValueError:
            raise ValueError(
                f"REPRO_HEARTBEAT must be a number, got {env!r}") from None
        if beat > 0:
            return beat
    return max(ttl / 3.0, 0.01)


def campaign_fingerprint(fps) -> str:
    """Identity of a job set: same jobs, same ledger, in any process.

    Schema and engine version join in so a ledger can never mix records
    with a store tree it does not match.
    """
    from .store import ENGINE_VERSION, STORE_SCHEMA

    return fingerprint("campaign", sorted(set(fps)), STORE_SCHEMA,
                       ENGINE_VERSION)


# ----------------------------------------------------------------------
# atomic file helpers (the store's tmp+rename discipline, plus
# create-if-absent via link for mutual-exclusion claims)
# ----------------------------------------------------------------------
def _atomic_write(path: str, data: bytes) -> bool:
    directory = os.path.dirname(path)
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            _discard(tmp)
            raise
    except OSError:
        return False
    return True


def _atomic_create(path: str, data: bytes) -> bool:
    """Write ``path`` only if absent; False when it already exists.

    ``os.link`` of a fully-written temp file is atomic and fails with
    EEXIST on a race — the claim discipline a shared directory needs.
    """
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        return True
    finally:
        _discard(tmp)


def _discard(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def _read_json(path: str):
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


# ----------------------------------------------------------------------
# the ledger
# ----------------------------------------------------------------------
class Ledger:
    """One campaign's durable coordination state on disk."""

    def __init__(self, root: str) -> None:
        self.root = root

    # -- paths ---------------------------------------------------------
    def _dir(self, name: str) -> str:
        return os.path.join(self.root, name)

    def lease_path(self, fp: str) -> str:
        return os.path.join(self._dir("leases"), fp + ".json")

    def _marker_path(self, kind: str, fp: str) -> str:
        return os.path.join(self._dir(kind), fp + ".json")

    # -- creation / manifest -------------------------------------------
    @classmethod
    def create(cls, root: str, jobs) -> "Ledger":
        """Create (or join) the ledger for ``jobs`` at ``root``.

        Idempotent: the manifest is written create-if-absent, so a
        resumed coordinator — or a concurrent one — reuses the existing
        ledger and its done markers instead of restarting the campaign.
        Raises ``OSError`` when the directory cannot be prepared (the
        caller degrades to the in-process path).
        """
        ledger = cls(root)
        os.makedirs(root, exist_ok=True)
        for sub in ("leases", "done", "failed", "workers"):
            os.makedirs(ledger._dir(sub), exist_ok=True)
        pkl = os.path.join(root, "manifest.pkl")
        if not os.path.exists(pkl):
            _atomic_create(pkl, pickle.dumps(list(jobs)))
        meta = os.path.join(root, "manifest.json")
        if not os.path.exists(meta):
            fps = [job.fingerprint for job in jobs]
            _atomic_create(meta, json.dumps(
                {"campaign": os.path.basename(root),
                 "total": len(fps), "jobs": fps,
                 "created": time.time()},
                separators=(",", ":")).encode())
        if not os.path.exists(pkl) or not os.path.exists(meta):
            raise OSError(f"could not initialise ledger at {root}")
        return ledger

    def exists(self) -> bool:
        return os.path.exists(os.path.join(self.root, "manifest.pkl"))

    def meta(self) -> dict | None:
        return _read_json(os.path.join(self.root, "manifest.json"))

    def load_jobs(self) -> list:
        with open(os.path.join(self.root, "manifest.pkl"), "rb") as handle:
            return pickle.load(handle)

    # -- leases --------------------------------------------------------
    def read_lease(self, fp: str, now: float):
        """``(record, state)`` with state in missing/held/expired/torn."""
        path = self.lease_path(fp)
        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
            expires = float(record["expires"])
            int(record["generation"])
        except FileNotFoundError:
            return None, "missing"
        except (OSError, ValueError, KeyError, TypeError):
            # A torn lease write (crash or injected): the job is
            # unprotected and claimable.
            return None, "torn"
        return record, ("held" if expires > now else "expired")

    def _write_lease(self, path: str, record: dict, *,
                     create: bool) -> bool:
        data = json.dumps(record, separators=(",", ":"))
        injector = active_injector()
        if injector is not None:
            mangled = injector.mangle_lease(data, path)
            if mangled is not None:
                data = mangled
        if create:
            try:
                return _atomic_create(path, data.encode())
            except OSError:
                return False
        return _atomic_write(path, data.encode())

    def try_claim(self, fp: str, worker: str, ttl: float, now: float,
                  *, force: bool = False):
        """Attempt to lease ``fp``; returns ``(lease, how)`` or (None, state).

        ``how`` is ``"issued"`` (fresh claim via atomic create),
        ``"stolen"`` (takeover of an expired lease, generation bumped),
        or ``"reclaimed"`` (takeover of a torn/unreadable record).  A
        steal uses plain atomic replace: two racing stealers may both
        think they won, which costs duplicate idempotent work, never
        correctness.  ``force`` takes even a held lease — only for a
        coordinator drain whose every worker is known dead.
        """
        path = self.lease_path(fp)
        current, state = self.read_lease(fp, now)
        if state == "held" and not force:
            return None, "held"
        generation = (int(current["generation"]) + 1) if current else 0
        lease = {"fingerprint": fp, "worker": worker, "pid": os.getpid(),
                 "acquired": now, "expires": now + ttl,
                 "generation": generation}
        if state == "missing":
            if not self._write_lease(path, lease, create=True):
                return None, "held"  # lost the create race (or read-only)
            obs_trace.event("lease.issued", fp=fp[:16], worker=worker,
                            generation=generation)
            return lease, "issued"
        if not self._write_lease(path, lease, create=False):
            return None, "held"
        how = "reclaimed" if state == "torn" else "stolen"
        obs_trace.event(f"lease.{how}", fp=fp[:16], worker=worker,
                        generation=generation)
        return lease, how

    def renew(self, fp: str, lease: dict, ttl: float, now: float):
        """Extend our lease; ``None`` when it was stolen from under us."""
        current, state = self.read_lease(fp, now)
        if current is not None and (
                current["worker"] != lease["worker"]
                or int(current["generation"]) != lease["generation"]):
            return None
        renewed = dict(lease, expires=now + ttl)
        self._write_lease(self.lease_path(fp), renewed, create=False)
        return renewed

    def release(self, fp: str, lease: dict) -> None:
        """Drop our lease (only if it is still ours)."""
        current, _state = self.read_lease(fp, 0.0)
        if current is None or (current["worker"] == lease["worker"]
                               and int(current["generation"])
                               == lease["generation"]):
            _discard(self.lease_path(fp))

    # -- completion markers --------------------------------------------
    def mark_done(self, fp: str, worker: str) -> None:
        _atomic_write(self._marker_path("done", fp), json.dumps(
            {"fingerprint": fp, "worker": worker,
             "completed": time.time()}, separators=(",", ":")).encode())
        obs_trace.event("lease.done", fp=fp[:16], worker=worker)

    def mark_failed(self, fp: str, label: str, kind: str, error: str,
                    worker: str) -> None:
        _atomic_write(self._marker_path("failed", fp), json.dumps(
            {"fingerprint": fp, "label": label, "kind": kind,
             "error": error, "worker": worker},
            separators=(",", ":")).encode())
        obs_trace.event("lease.failed", fp=fp[:16], worker=worker,
                        kind=kind)

    def _marker_fingerprints(self, kind: str) -> set[str]:
        try:
            names = os.listdir(self._dir(kind))
        except OSError:
            return set()
        return {name[:-5] for name in names if name.endswith(".json")}

    def done_fingerprints(self) -> set[str]:
        return self._marker_fingerprints("done")

    def is_done(self, fp: str) -> bool:
        return os.path.exists(self._marker_path("done", fp))

    def failed_fingerprints(self) -> set[str]:
        return self._marker_fingerprints("failed")

    def failed_records(self) -> dict[str, dict]:
        records = {}
        for fp in self.failed_fingerprints():
            record = _read_json(self._marker_path("failed", fp))
            records[fp] = record if record is not None else {
                "fingerprint": fp, "label": fp[:16], "kind": "unknown",
                "error": "unreadable failure marker"}
        return records

    # -- worker stats --------------------------------------------------
    def write_worker_stats(self, worker: str, stats: dict) -> None:
        _atomic_write(os.path.join(self._dir("workers"), worker + ".json"),
                      json.dumps(stats, separators=(",", ":")).encode())

    def worker_stats(self) -> list[dict]:
        stats = []
        try:
            names = sorted(os.listdir(self._dir("workers")))
        except OSError:
            return []
        for name in names:
            if not name.endswith(".json"):
                continue
            record = _read_json(os.path.join(self._dir("workers"), name))
            if record is not None:
                stats.append(record)
        return stats

    # -- status --------------------------------------------------------
    def status(self, now: float | None = None) -> dict:
        now = now if now is not None else time.time()
        meta = self.meta()
        if meta is None:
            # The manifest is mid-write (coordinator still creating the
            # ledger) or torn: retry once across the write window, then
            # report "initialising" rather than guessing totals.
            time.sleep(META_RETRY)
            meta = self.meta()
        initialising = meta is None
        meta = meta or {}
        total = int(meta.get("total", 0))
        done = self.done_fingerprints()
        failed = self.failed_fingerprints() - done
        held = expired = torn = 0
        for fp in self._marker_fingerprints("leases"):
            _record, state = self.read_lease(fp, now)
            if state == "held":
                held += 1
            elif state == "expired":
                expired += 1
            elif state == "torn":
                torn += 1
        return {"campaign": meta.get("campaign",
                                     os.path.basename(self.root)),
                "initialising": initialising,
                "total": total, "done": len(done), "failed": len(failed),
                "remaining": max(0, total - len(done) - len(failed)),
                "leases_held": held, "leases_expired": expired,
                "leases_torn": torn,
                "workers_seen": len(self.worker_stats())}

    def destroy(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)


# ----------------------------------------------------------------------
# ledger discovery (the `repro campaign` CLI)
# ----------------------------------------------------------------------
def fabric_root(store_root: str | None = None) -> str:
    """Where ledgers live: ``<store root>/fabric``."""
    if store_root is None:
        from .store import cache_dir

        store_root = os.path.abspath(cache_dir())
    return os.path.join(store_root, "fabric")


def ledger_for(jobs, store_root: str | None = None) -> Ledger:
    """The (possibly not-yet-created) ledger for this job set."""
    fps = [job.fingerprint for job in jobs]
    return Ledger(os.path.join(fabric_root(store_root),
                               campaign_fingerprint(fps)))


def find_ledger(ref: str, store_root: str | None = None) -> Ledger | None:
    """Resolve a campaign reference: a ledger path or a fp prefix."""
    if os.path.isdir(ref) and Ledger(ref).exists():
        return Ledger(ref)
    root = fabric_root(store_root)
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return None
    matches = [n for n in names if n.startswith(ref)]
    if len(matches) == 1:
        ledger = Ledger(os.path.join(root, matches[0]))
        return ledger if ledger.exists() else None
    return None


def list_ledgers(store_root: str | None = None) -> list[Ledger]:
    root = fabric_root(store_root)
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return []
    ledgers = []
    for name in names:
        ledger = Ledger(os.path.join(root, name))
        if ledger.exists():
            ledgers.append(ledger)
    return ledgers


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------
def _fold_worker_stats(ledger: Ledger, report: CampaignReport,
                       already: dict[str, dict]) -> None:
    """Fold per-worker lease counters into the report, delta-style.

    ``already`` remembers what was folded per worker id, so calling this
    repeatedly (supervision loop + final collection) never double-counts.
    """
    for stats in ledger.worker_stats():
        worker = str(stats.get("worker", "?"))
        previous = already.get(worker, {})
        for name in LEASE_COUNTERS + ("attempts", "retries"):
            value = int(stats.get(name, 0))
            delta = value - int(previous.get(name, 0))
            if delta > 0:
                setattr(report, name, getattr(report, name) + delta)
        already[worker] = stats


def _spawn_worker(ledger: Ledger, store_root: str, index: int,
                  ttl: float, beat: float):
    """Fork one fabric worker process attached to ``ledger``."""
    from .worker import worker_process_entry

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        ctx = multiprocessing.get_context()
    proc = ctx.Process(target=worker_process_entry,
                       args=(ledger.root, store_root, index, ttl, beat),
                       daemon=False)
    proc.start()
    return proc


def _drain_in_process(ledger: Ledger, disk, policy,
                      report: CampaignReport) -> None:
    """Coordinator-side fallback: finish the ledger without workers.

    Runs a worker loop in this process with ``force=True`` (every
    remaining holder is known dead, so leases are taken immediately) and
    without marking the process as a pool worker — injected worker
    deaths cannot fire here, so, exactly like the PR 6 degradation path,
    this always terminates.
    """
    from .worker import FabricWorker

    # The drain's attempts/retries/lease counters reach the report the
    # same way every worker's do: via its ledger stats file.
    report.degradations += 1
    FabricWorker(ledger, f"drain-{os.getpid()}", store=disk,
                 policy=policy, force=True).run()


def run_jobs_fabric(jobs, *, workers: int | None = None, memo: bool = True,
                    store=None, report: CampaignReport | None = None,
                    strict: bool = True, policy=None) -> list:
    """Execute ``jobs`` through the lease fabric; results in input order.

    Same contract as :func:`~repro.exec.engine.run_jobs` (memo/store
    tiers, ``strict``, report accounting) with execution delegated to N
    leased worker processes coordinated through the on-disk ledger.
    Degrades to the in-process engine when the fabric cannot start (no
    store — the fabric needs its rendezvous — or an unwritable ledger
    directory), and drains in-process when the entire worker fleet is
    lost.  SIGINT/SIGTERM drain gracefully: workers finish their
    current lease, everything completed stays flushed, and the
    interrupt is re-raised for the caller to report.
    """
    from .engine import (
        RetryPolicy,
        _prewarm_traces,
        _resolve_cached,
        default_jobs,
        fabric_workers,
        run_jobs,
    )
    from .store import resolve_store

    jobs = list(jobs)
    report = report if report is not None else CampaignReport()
    policy = policy if policy is not None else RetryPolicy.from_env()
    if workers is None:
        workers = fabric_workers() or min(2, default_jobs())
    workers = max(1, int(workers))
    disk = resolve_store(store)
    if disk is None:
        # No rendezvous: the fabric cannot coordinate.  Degrade to the
        # fault-tolerant in-process engine (PR 6 path) and say so.
        report.degradations += 1
        return run_jobs(jobs, memo=memo, store=store, report=report,
                        strict=strict, policy=policy, fabric=False)

    report.jobs += len(jobs)
    results: list = [None] * len(jobs)
    failures: dict[int, BaseException] = {}
    # Entered by hand and exited in finish() so the span covers the
    # whole fabric campaign (a no-op singleton when tracing is off).
    obs_trace.refresh()
    campaign_span = obs_trace.span("campaign", jobs=len(jobs),
                                   workers=workers, mode="fabric")
    campaign_span.__enter__()
    tallies_before = (report.tallies() if obs_trace.TRACER is not None
                      else None)
    positions, fresh = _resolve_cached(jobs, memo, disk, report, results)
    corrupt_before = disk.corrupt

    def finish() -> list:
        report.store_errors += disk.corrupt - corrupt_before
        disk.flush_counters()
        tracer = obs_trace.TRACER
        if tracer is not None:
            from ..obs import metrics as obs_metrics

            tallies = report.tallies()
            if tallies_before is not None:
                tallies = {name: value - tallies_before.get(name, 0)
                           for name, value in tallies.items()}
            obs_metrics.REGISTRY.count_into("campaign", tallies)
            tracer.emit_metrics(obs_metrics.REGISTRY.snapshot(),
                                scope="campaign")
        campaign_span.__exit__(None, None, None)
        if failures and strict:
            raise failures[min(failures)]
        return results

    if not fresh:
        return finish()

    # Trace failures are permanent and worker-independent: fail those
    # jobs here; below they get durable ``failed/`` markers so no worker
    # ever attempts them.
    trace_failures = _prewarm_traces(fresh)
    runnable = []
    trace_failed = []
    for job in fresh:
        key = (job.workload, job.config.instructions)
        if key in trace_failures:
            for i in positions[job.fingerprint]:
                failures.setdefault(i, trace_failures[key])
            report.failures.append(JobFailure(
                label=f"{job.model} on {getattr(job.workload, 'name', job.workload)}",
                fingerprint=job.fingerprint, kind="trace",
                error=str(trace_failures[key])))
            trace_failed.append((job, trace_failures[key]))
        else:
            runnable.append(job)
    if not runnable:
        return finish()

    # The campaign's identity is the FULL requested job set, not the
    # post-tier remainder: a killed coordinator resumed in a fresh
    # process resolves some cells from the store first, and must still
    # rendezvous at the *same* ledger.  The manifest carries one job per
    # distinct fingerprint; cells already settled by the memo/store
    # tiers are seeded as done so workers skip straight to real work.
    manifest = []
    seen_fps: set[str] = set()
    for job in jobs:
        if job.fingerprint not in seen_fps:
            seen_fps.add(job.fingerprint)
            manifest.append(job)
    try:
        ledger = Ledger.create(ledger_for(manifest, disk.root).root,
                               manifest)
        fresh_fps = {job.fingerprint for job in fresh}
        seeded: set[str] = set()
        for job, result in zip(jobs, results):
            fp = job.fingerprint
            if fp in fresh_fps or fp in seeded or result is None:
                continue
            seeded.add(fp)
            if not ledger.is_done(fp):
                disk.put_result(fp, result)  # memo hits may not be on disk
                ledger.mark_done(fp, "coordinator")
        for job, exc in trace_failed:
            ledger.mark_failed(
                job.fingerprint,
                f"{job.model} on {getattr(job.workload, 'name', job.workload)}",
                "trace", str(exc), "coordinator")
    except OSError:
        report.degradations += 1
        sub = CampaignReport()
        sub_results = run_jobs(runnable, memo=memo, store=disk,
                               report=sub, strict=False, policy=policy,
                               fabric=False)
        sub.jobs = 0  # these slots are already counted in this report
        report.merge(sub)
        failed_fps = {f.fingerprint: f for f in sub.failures}
        for job, result in zip(runnable, sub_results):
            fp = job.fingerprint
            if result is not None:
                for i in positions[fp]:
                    results[i] = result
            elif fp in failed_fps:
                f = failed_fps[fp]
                error = FabricJobError(f.label, fp, f.kind, f.error)
                for i in positions[fp]:
                    failures.setdefault(i, error)
        return finish()

    ttl = lease_ttl()
    beat = heartbeat_interval(ttl)
    folded: dict[str, dict] = {}
    interrupted: BaseException | None = None
    procs: list = []
    spawned = 0
    respawn_budget = max(workers * RESPAWN_FACTOR, 4)
    try:
        try:
            for _ in range(workers):
                procs.append(_spawn_worker(ledger, disk.root, spawned,
                                           ttl, beat))
                spawned += 1
        except OSError:
            pass  # partial fleet (or none): supervised below
        if not procs:
            _drain_in_process(ledger, disk, policy, report)
        else:
            while True:
                status = ledger.status()
                if status["remaining"] == 0:
                    break
                alive = []
                for proc in procs:
                    if proc.is_alive():
                        alive.append(proc)
                        continue
                    if proc.exitcode not in (0, None):
                        report.worker_deaths += 1
                        if spawned - workers < respawn_budget:
                            try:
                                alive.append(_spawn_worker(
                                    ledger, disk.root, spawned, ttl, beat))
                                spawned += 1
                            except OSError:
                                pass
                procs = alive
                if not procs:
                    if ledger.status()["remaining"] == 0:
                        break
                    _drain_in_process(ledger, disk, policy, report)
                    break
                time.sleep(POLL_INTERVAL)
    except (KeyboardInterrupt, SystemExit) as exc:
        interrupted = exc
    finally:
        # Graceful drain: SIGTERM lets each worker finish (and flush)
        # its current lease before exiting; stragglers are killed.
        for proc in procs:
            if proc.is_alive():
                try:
                    os.kill(proc.pid, signal.SIGTERM)
                except OSError:
                    pass
        deadline = time.monotonic() + (60.0 if interrupted is None else 10.0)
        for proc in procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():  # pragma: no cover - defensive
                proc.kill()
                proc.join()
        _fold_worker_stats(ledger, report, folded)

    # Collect: completed results come from the store; markers say which
    # jobs failed permanently; anything else (torn store record, store
    # write that never landed) is recomputed here — the same in-process
    # retry loop the workers use, so injected faults still converge.
    failed = ledger.failed_records()
    loaded = disk.get_results([job.fingerprint for job in runnable
                               if job.fingerprint not in failed])
    incomplete = 0
    for job in runnable:
        fp = job.fingerprint
        if fp in failed:
            record = failed[fp]
            error = FabricJobError(record.get("label", fp[:16]), fp,
                                   record.get("kind", "unknown"),
                                   record.get("error", ""))
            for i in positions[fp]:
                failures.setdefault(i, error)
            report.failures.append(JobFailure(
                label=record.get("label", fp[:16]), fingerprint=fp,
                kind=record.get("kind", "unknown"),
                error=record.get("error", "")))
            continue
        result = loaded.get(fp)
        if result is None:
            if interrupted is not None:
                incomplete += 1
                continue  # a drained interrupt leaves unfinished cells
            from .worker import compute_with_retries

            try:
                result = compute_with_retries(job, policy, report)
            except BaseException as exc:
                for i in positions[fp]:
                    failures.setdefault(i, exc)
                report.failures.append(JobFailure(
                    label=f"{job.model} on {getattr(job.workload, 'name', job.workload)}",
                    fingerprint=fp, kind="exception", error=str(exc)))
                continue
            disk.put_result(fp, result)
            ledger.mark_done(fp, "coordinator")
        report.computed += 1
        if memo:
            RESULT_CACHE.put(fp, result)
        for i in positions[fp]:
            results[i] = result

    if interrupted is None and not failed and incomplete == 0 \
            and ledger.done_fingerprints() >= {job.fingerprint
                                               for job in runnable}:
        # Fully drained and healthy: the ledger is scaffolding, results
        # live in the store.  Failed campaigns keep theirs for
        # post-mortem (`repro campaign status`).
        ledger.destroy()
    try:
        return finish()
    finally:
        if interrupted is not None:
            raise interrupted
