"""Picklable simulation-job specs."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from .cache import TRACE_CACHE
from .fingerprint import fingerprint


@dataclass(frozen=True)
class SimJob:
    """One simulation: a machine model on a workload under a config.

    The spec is tiny and picklable — the trace is *not* carried along;
    executors regenerate it (deterministically, via the trace cache) on
    whichever process runs the job.  ``workload`` is a named-suite
    kernel (``str``) or a generated
    :class:`~repro.wgen.spec.WorkloadSpec` — the latter is itself a
    frozen dataclass of primitives, so it pickles with the job and its
    every knob folds into the fingerprint.  ``config`` is an
    :class:`~repro.harness.experiment.ExperimentConfig`; its
    ``instructions`` budget names the trace, and the rest (machine
    config, feature flags, advance triggers) names the timing model.
    """

    model: str
    workload: object
    config: object

    @cached_property
    def fingerprint(self) -> str:
        """Deterministic identity: equal fingerprints, equal results."""
        return fingerprint(self.model, self.workload, self.config)

    def run(self):
        """Execute the simulation (no memo — the engine layers that)."""
        # Local import: harness.experiment drives its campaigns through
        # this package, so a top-level import would be circular.
        from ..harness.experiment import make_core

        trace = TRACE_CACHE.get(self.workload, self.config.instructions)
        return make_core(self.model, trace, self.config).run()
