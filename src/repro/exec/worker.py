"""The fabric worker: lease, heartbeat, simulate, flush, repeat.

A :class:`FabricWorker` is one agent draining one campaign ledger
(:mod:`repro.exec.fabric`).  Its loop is deliberately stateless between
iterations — every decision re-derives from the ledger and the store —
so any number of workers can run it concurrently, join late, die
without notice, or resume after a crash, and the campaign still
converges:

1. scan the manifest (rotated by worker index, so a fleet spreads out
   instead of stampeding the same job) for a fingerprint that is
   neither done nor failed;
2. lease it — a fresh claim, a steal of an expired lease, or a reclaim
   of a torn one;
3. while simulating, renew the lease from a heartbeat thread; a stall
   (injected or real) lets the lease expire and another worker steal
   the job, which is safe because
4. completion is idempotent: the result is written through the
   content-addressed store (same fingerprint → payload-identical
   record), then a ``done/`` marker is dropped and the lease released
   (only if still ours).

Before computing, the worker checks the store: a record that is already
present (a stolen lease's first owner finished after all, or a crashed
worker died between its store write and its ``done`` marker) is adopted
rather than recomputed.

``worker_process_entry`` is the fork target ``run_jobs_fabric`` spawns
(also reachable as ``repro worker --ledger ...``): it pins the child to
sequential in-process execution (no nested pools, no nested fabrics),
marks it as a worker so injected worker deaths may fire, and converts
SIGTERM/SIGINT into a graceful "finish the current lease, flush, exit".
"""

from __future__ import annotations

import os
import signal
import threading
import time

from ..obs import trace as obs_trace
from .faults import InjectedFault, active_injector, mark_worker_process
from .report import CampaignReport

#: Idle rescan interval when every remaining job is leased elsewhere.
IDLE_SLEEP = 0.05


def compute_with_retries(job, policy, report: CampaignReport | None = None):
    """Run one SimJob in-process with the engine's bounded retry loop.

    Retryable failures (injected chaos faults) back off and re-roll, at
    most ``policy.max_attempts`` times, then raise
    :class:`~repro.exec.engine.RetryExhaustedError`; anything else
    propagates immediately.  Used by fabric workers and by the
    coordinator's collection pass, so a chaos plan converges identically
    wherever the attempt happens to run.
    """
    from .engine import RetryExhaustedError, _backoff, _job_label

    fp = job.fingerprint
    attempts = 0
    while True:
        attempts += 1
        if report is not None:
            report.attempts += 1
        try:
            injector = active_injector()
            if injector is not None:
                injector.on_job_attempt(fp, attempts)
            with obs_trace.span("attempt", fp=fp[:16], attempt=attempts):
                return job.run()
        except InjectedFault as exc:
            if attempts >= policy.max_attempts:
                raise RetryExhaustedError(_job_label(job), fp, attempts,
                                          exc) from exc
            if report is not None:
                report.retries += 1
            time.sleep(_backoff(policy, attempts))


class _Heartbeat(threading.Thread):
    """Renews one lease on a period until stopped (or the lease is lost).

    An injected ``heartbeat_stall`` skips renewals; once the lease is
    observed under new ownership the thread sets ``lost`` and exits —
    the worker still finishes its (idempotent) job, it just will not
    touch the stolen lease again.
    """

    def __init__(self, worker: "FabricWorker", fp: str, lease: dict) -> None:
        super().__init__(daemon=True)
        self.worker = worker
        self.fp = fp
        self.lease = lease
        self.lost = threading.Event()
        self._done = threading.Event()

    def run(self) -> None:
        ordinal = 0
        lease = self.lease
        while not self._done.wait(self.worker.heartbeat):
            ordinal += 1
            injector = active_injector()
            if injector is not None and injector.stall_heartbeat(
                    self.worker.fault_id, self.fp, ordinal):
                continue  # stalled: no renewal this beat
            renewed = self.worker.ledger.renew(self.fp, lease,
                                               self.worker.ttl,
                                               self.worker.now())
            if renewed is None:
                self.lost.set()
                return
            lease = renewed

    def stop(self) -> None:
        self._done.set()
        self.join()


class FabricWorker:
    """One lease-driven drain loop over a campaign ledger."""

    def __init__(self, ledger, worker_id: str, *, store=None,
                 ttl: float | None = None, heartbeat: float | None = None,
                 policy=None, index: int = 0, force: bool = False) -> None:
        from .fabric import heartbeat_interval, lease_ttl
        from .engine import RetryPolicy
        from .store import resolve_store

        self.ledger = ledger
        self.worker_id = worker_id
        #: Stable identity for fault rolls (no pid, so a chaos plan
        #: targets "worker 2" deterministically across runs and respawns
        #: of the same slot).
        self.fault_id = f"w{index}"
        self.index = index
        self.store = resolve_store(store)
        if self.store is None:
            raise ValueError("a fabric worker needs a result store")
        self.ttl = ttl if ttl is not None else lease_ttl()
        self.heartbeat = (heartbeat if heartbeat is not None
                          else heartbeat_interval(self.ttl))
        self.policy = policy if policy is not None else RetryPolicy.from_env()
        self.force = force
        self.report = CampaignReport()
        self._stop = threading.Event()
        injector = active_injector()
        #: Injected clock skew shifts this worker's notion of "now":
        #: it writes leases that look stale to others (stolen early)
        #: and sees fresh leases as expired (steals early) — TTL math
        #: under disagreeing clocks, the multi-host failure mode.
        self.skew = (injector.clock_skew_for(self.fault_id)
                     if injector is not None else 0.0)
        self.stats = {"worker": worker_id, "pid": os.getpid(),
                      "completed": 0, "adopted": 0, "failed": 0,
                      "attempts": 0, "retries": 0,
                      "leases_issued": 0, "leases_expired": 0,
                      "leases_stolen": 0, "leases_reclaimed": 0,
                      "leases_lost": 0}

    def now(self) -> float:
        return time.time() + self.skew

    def stop(self) -> None:
        """Request a graceful exit after the current lease completes."""
        self._stop.set()

    def flush_stats(self) -> None:
        self.stats["attempts"] = self.report.attempts
        self.stats["retries"] = self.report.retries
        self.ledger.write_worker_stats(self.worker_id, self.stats)

    # -- the drain loop -------------------------------------------------
    def run(self) -> None:
        """Drain the ledger: loop until nothing is left (or stopped)."""
        with obs_trace.span("worker.lifetime", worker=self.worker_id,
                            index=self.index):
            self._drain()
        tracer = obs_trace.TRACER
        if tracer is not None:
            # Publish this worker's tallies as merge-safe metrics (the
            # exporter folds them across the fleet) before the process
            # goes away.
            from ..obs import metrics as obs_metrics

            obs_metrics.REGISTRY.count_into(
                "fabric", {name: value for name, value in self.stats.items()
                           if name not in ("worker", "pid")})
            tracer.emit_metrics(obs_metrics.REGISTRY.snapshot(),
                                scope="worker")

    def _drain(self) -> None:
        jobs = {job.fingerprint: job for job in self.ledger.load_jobs()}
        order = sorted(jobs)
        if order and self.index:
            pivot = self.index % len(order)
            order = order[pivot:] + order[:pivot]
        try:
            while not self._stop.is_set():
                settled = (self.ledger.done_fingerprints()
                           | self.ledger.failed_fingerprints())
                remaining = [fp for fp in order if fp not in settled]
                if not remaining:
                    break
                progress = False
                for fp in remaining:
                    if self._stop.is_set():
                        break
                    if self.ledger.is_done(fp):
                        continue  # settled since this scan started
                    lease, how = self.ledger.try_claim(
                        fp, self.worker_id, self.ttl, self.now(),
                        force=self.force)
                    if lease is None:
                        continue
                    if how == "stolen":
                        self.stats["leases_expired"] += 1
                        self.stats["leases_stolen"] += 1
                    elif how == "reclaimed":
                        self.stats["leases_reclaimed"] += 1
                    else:
                        self.stats["leases_issued"] += 1
                    progress = True
                    self._execute(jobs[fp], lease)
                    self.flush_stats()
                if not progress and not self._stop.is_set():
                    # Everything left is leased to live workers: wait
                    # for completions (or expiries) and rescan.
                    time.sleep(IDLE_SLEEP)
        finally:
            self.flush_stats()
            self.store.flush_counters()

    def _execute(self, job, lease) -> None:
        fp = job.fingerprint
        with obs_trace.span("lease", fp=fp[:16], worker=self.worker_id,
                            generation=lease.get("generation", 0)):
            self._execute_leased(job, lease)

    def _execute_leased(self, job, lease) -> None:
        fp = job.fingerprint
        beat = _Heartbeat(self, fp, lease)
        beat.start()
        try:
            # Adopt an existing record first: a stolen lease's first
            # owner may have finished, or a crashed worker may have died
            # between its store write and its done marker.
            result = self.store.get_result(fp)
            if result is not None:
                self.stats["adopted"] += 1
            else:
                try:
                    result = compute_with_retries(job, self.policy,
                                                  self.report)
                except BaseException as exc:
                    from .engine import RetryExhaustedError, _job_label

                    kind = ("retries-exhausted"
                            if isinstance(exc, RetryExhaustedError)
                            else "exception")
                    self.stats["failed"] += 1
                    self.ledger.mark_failed(fp, _job_label(job), kind,
                                            str(exc), self.worker_id)
                    return
                self.store.put_result(fp, result)
                self.stats["completed"] += 1
            self.ledger.mark_done(fp, self.worker_id)
        finally:
            beat.stop()
            if beat.lost.is_set():
                self.stats["leases_lost"] += 1
                obs_trace.event("lease.lost", fp=fp[:16],
                                worker=self.worker_id)
            else:
                self.ledger.release(fp, lease)


def worker_process_entry(ledger_root: str, store_root: str, index: int,
                         ttl: float, heartbeat: float) -> None:
    """Fork/exec target for one fabric worker process.

    Pins the child to sequential in-process execution (``REPRO_JOBS=1``,
    ``REPRO_FABRIC_WORKERS=0`` — no nested pools or fabrics), marks it
    as a worker so injected worker deaths may fire here, and maps
    SIGTERM/SIGINT to a graceful stop: finish the current lease, flush
    stats and store counters, exit 0.
    """
    from .fabric import Ledger
    from .store import ResultStore

    os.environ["REPRO_JOBS"] = "1"
    os.environ["REPRO_FABRIC_WORKERS"] = "0"
    mark_worker_process()
    tracer = obs_trace.refresh()
    if tracer is not None:
        # Own track name per worker slot; fork also inherited the
        # parent's registry counts, which this process must not re-
        # publish as its own.
        from ..obs import metrics as obs_metrics

        obs_metrics.REGISTRY.clear()
        tracer.set_label(f"worker-w{index}")
    ledger = Ledger(ledger_root)
    worker = FabricWorker(ledger, f"w{index}-{os.getpid()}",
                          store=ResultStore(store_root), ttl=ttl,
                          heartbeat=heartbeat, index=index)

    def _graceful(_signum, _frame) -> None:
        worker.stop()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    worker.run()
